/// \file test_mem.cpp
/// \brief The memory accountant's contract: scopes attribute bytes to the
/// right slot and tag, high-water marks survive releases, phases fold with
/// live bytes on the next phase's floor, sessions stack, stale releases
/// are dropped, unmatched releases saturate instead of underflowing, the
/// full pipeline's memory section is byte-identical across thread counts
/// and delivery scrambles, each CoreLayout repeats deterministically, and
/// the hooks cost (almost) nothing when no session is installed.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/key.hpp"
#include "forest/balance.hpp"
#include "forest/forest.hpp"
#include "obs/mem.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

using obs::MemScope;
using obs::MemSession;
using obs::MemSnapshot;
using obs::MemTag;

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

const MemSnapshot::TagPeaks* find_tag(const MemSnapshot& s, MemTag tag) {
  for (const auto& t : s.tags) {
    if (t.tag == tag) return &t;
  }
  return nullptr;
}

const MemSnapshot::PhasePeak* find_phase(const MemSnapshot& s,
                                         const std::string& name) {
  for (const auto& p : s.phases) {
    if (p.phase == name) return &p;
  }
  return nullptr;
}

// --------------------------------------------------- scopes + attribution --

TEST(Mem, ScopesAttributeToExplicitSlots) {
  MemSession mem(4);
  {
    MemScope a(0, MemTag::kSortScratch, 100);
    MemScope b(2, MemTag::kSortScratch, 50);
    MemScope c(obs::kMemEngineSlot, MemTag::kDirtyLog, 7);
    MemScope d(MemTag::kLinearize, 30);  // unbound thread -> engine slot
    const MemSnapshot s = mem.snapshot();
    EXPECT_EQ(s.nranks, 4);
    EXPECT_FALSE(s.empty());
    const auto* sort = find_tag(s, MemTag::kSortScratch);
    ASSERT_NE(sort, nullptr);
    ASSERT_EQ(sort->per_rank.size(), 4u);
    EXPECT_EQ(sort->per_rank[0], 100u);
    EXPECT_EQ(sort->per_rank[1], 0u);
    EXPECT_EQ(sort->per_rank[2], 50u);
    EXPECT_EQ(sort->engine, 0u);
    EXPECT_EQ(sort->total, 150u);
    const auto* dirty = find_tag(s, MemTag::kDirtyLog);
    ASSERT_NE(dirty, nullptr);
    EXPECT_EQ(dirty->engine, 7u);
    const auto* lin = find_tag(s, MemTag::kLinearize);
    ASSERT_NE(lin, nullptr);
    EXPECT_EQ(lin->engine, 30u);
    // Tags nobody charged do not appear.
    EXPECT_EQ(find_tag(s, MemTag::kGhost), nullptr);
  }
  // Scope destruction releases live bytes but never lowers a peak.
  const MemSnapshot after = mem.snapshot();
  const auto* sort = find_tag(after, MemTag::kSortScratch);
  ASSERT_NE(sort, nullptr);
  EXPECT_EQ(sort->total, 150u);
}

TEST(Mem, MemRankBindsTheCallingThread) {
  MemSession mem(3);
  {
    obs::MemRank bind(1);
    MemScope a(MemTag::kSeeds, 64);
    {
      obs::MemRank inner(2);  // bindings nest ...
      MemScope b(MemTag::kSeeds, 8);
    }
    MemScope c(MemTag::kSeeds, 1);  // ... and restore
    const MemSnapshot s = mem.snapshot();
    const auto* seeds = find_tag(s, MemTag::kSeeds);
    ASSERT_NE(seeds, nullptr);
    EXPECT_EQ(seeds->per_rank[1], 65u);
    EXPECT_EQ(seeds->per_rank[2], 8u);
    EXPECT_EQ(seeds->engine, 0u);
  }
}

// ------------------------------------------------------ high-water marks --

TEST(Mem, SetRechargesAndPeaksPersist) {
  MemSession mem(1);
  MemScope a(0, MemTag::kHashSlots, 1000);
  a.set_slot(0, MemTag::kHashSlots, 10);  // shrink: live drops, peak stays
  {
    const MemSnapshot s = mem.snapshot();
    const auto* hash = find_tag(s, MemTag::kHashSlots);
    ASSERT_NE(hash, nullptr);
    EXPECT_EQ(hash->per_rank[0], 1000u);
    EXPECT_EQ(s.peak_bytes, 1000u);
  }
  a.set_slot(0, MemTag::kHashSlots, 2000);  // grow past the old peak
  {
    const MemSnapshot s = mem.snapshot();
    EXPECT_EQ(find_tag(s, MemTag::kHashSlots)->per_rank[0], 2000u);
    EXPECT_EQ(s.peak_bytes, 2000u);
  }
}

TEST(Mem, PeakIsPerSlotSum) {
  // peak_bytes sums each slot's own high-water mark (the deterministic
  // upper bound), not the max of the cross-slot live sum over time.
  MemSession mem(2);
  { MemScope a(0, MemTag::kOther, 100); }  // slot 0 peaked alone ...
  { MemScope b(1, MemTag::kOther, 60); }   // ... then slot 1
  const MemSnapshot s = mem.snapshot();
  EXPECT_EQ(s.peak_bytes, 160u);  // 100 + 60, though never live together
}

TEST(Mem, CopyRechargesMoveTransfers) {
  MemSession mem(1);
  MemScope a(0, MemTag::kGhost, 40);
  MemScope b = a;  // copy: a second 40-byte charge
  {
    const MemSnapshot s = mem.snapshot();
    EXPECT_EQ(find_tag(s, MemTag::kGhost)->per_rank[0], 80u);
  }
  MemScope c = std::move(a);  // move: no new charge
  {
    const MemSnapshot s = mem.snapshot();
    EXPECT_EQ(find_tag(s, MemTag::kGhost)->per_rank[0], 80u);
    EXPECT_EQ(c.bytes(), 40u);
    EXPECT_EQ(a.bytes(), 0u);  // NOLINT(bugprone-use-after-move): spec'd
  }
}

TEST(Mem, UnmatchedReleaseSaturates) {
  MemSession mem(1);
  obs::mem_release(0, MemTag::kOther, 999);  // nothing live: clamps at 0
  obs::mem_charge(0, MemTag::kOther, 5);
  const MemSnapshot s = mem.snapshot();
  const auto* other = find_tag(s, MemTag::kOther);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->per_rank[0], 5u);  // no underflow into 2^64 territory
  EXPECT_EQ(s.peak_bytes, 5u);
}

// ---------------------------------------------------------------- phases --

TEST(Mem, PhasesFoldWithLiveBytesOnTheNextFloor) {
  MemSession mem(1);
  MemScope persistent(0, MemTag::kForestLeaves, 500);
  { MemScope transient(0, MemTag::kSortScratch, 300); }
  mem.set_phase("second");
  // "second" starts from the 500 still live, not from zero; its own
  // transient raises it to 600, well below the first phase's 800.
  { MemScope transient(0, MemTag::kLinearize, 100); }
  const MemSnapshot s = mem.snapshot();
  const auto* run = find_phase(s, "run");
  const auto* second = find_phase(s, "second");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(run->per_rank[0], 800u);
  EXPECT_EQ(second->per_rank[0], 600u);
  // Snapshotting folded the open phase without closing it: a later charge
  // still lands in "second".
  { MemScope again(0, MemTag::kLinearize, 400); }
  EXPECT_EQ(find_phase(mem.snapshot(), "second")->per_rank[0], 900u);
}

TEST(Mem, RepeatedPhaseLabelsMaxMerge) {
  MemSession mem(1);
  { MemScope a(0, MemTag::kOther, 100); }
  mem.set_phase("work");
  { MemScope b(0, MemTag::kOther, 70); }
  mem.set_phase("run");  // back to the first label
  mem.set_phase("work");
  { MemScope c(0, MemTag::kOther, 20); }
  const MemSnapshot s = mem.snapshot();
  ASSERT_EQ(s.phases.size(), 2u);  // labels dedupe in first-entry order
  EXPECT_EQ(s.phases[0].phase, "run");
  EXPECT_EQ(s.phases[1].phase, "work");
  EXPECT_EQ(s.phases[0].per_rank[0], 100u);
  EXPECT_EQ(s.phases[1].per_rank[0], 70u);  // max(70, 20)
}

// -------------------------------------------------------------- sessions --

TEST(Mem, SessionsStackAndRestore) {
  MemSession outer(2);
  obs::mem_charge(0, MemTag::kOther, 10);
  {
    MemSession inner(3);
    obs::mem_charge(0, MemTag::kOther, 7);
    const MemSnapshot s = inner.snapshot();
    EXPECT_EQ(s.nranks, 3);
    EXPECT_EQ(find_tag(s, MemTag::kOther)->per_rank[0], 7u);
  }
  obs::mem_charge(1, MemTag::kOther, 1);  // lands in the restored outer
  const MemSnapshot s = outer.snapshot();
  const auto* other = find_tag(s, MemTag::kOther);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->per_rank[0], 10u);
  EXPECT_EQ(other->per_rank[1], 1u);
}

TEST(Mem, StaleScopeReleaseIsDropped) {
  MemSession outer(1);
  MemScope survivor;
  {
    MemSession inner(1);
    survivor.set_slot(0, MemTag::kOther, 123);  // charged against inner
  }
  obs::mem_charge(0, MemTag::kOther, 5);
  survivor.reset();  // inner is gone: must not touch outer's ledger
  const MemSnapshot s = outer.snapshot();
  const auto* other = find_tag(s, MemTag::kOther);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->per_rank[0], 5u);
}

TEST(Mem, ScopeCreatedBeforeSessionChargesNothing) {
  MemScope early(0, MemTag::kOther, 77);  // no session installed
  MemSession mem(1);
  const MemSnapshot before = mem.snapshot();
  EXPECT_EQ(find_tag(before, MemTag::kOther), nullptr);
  // ... but a *copy* made under the session re-charges the recorded bytes.
  MemScope copy = early;
  const MemSnapshot after = mem.snapshot();
  const auto* other = find_tag(after, MemTag::kOther);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->per_rank[0], 77u);
}

// ----------------------------------------------- pipeline determinism --

/// One fully accounted balance run: forest construction, refinement,
/// partitioning, and the one-pass balance, all inside a MemSession whose
/// canonical serialization is the comparison key.
std::string accounted_run(int threads, bool scramble) {
  par::set_num_threads(threads);
  constexpr int kRanks = 6;
  MemSession mem(kRanks);
  Forest<3> f(Connectivity<3>::brick({2, 2, 1}), kRanks, 1);
  fractal_refine(f, 4);
  f.partition_uniform();
  SimComm comm(kRanks);
  if (scramble) comm.set_scramble(42);
  balance(f, BalanceOptions::new_config(), comm);
  return mem.snapshot().serialize();
}

TEST(Mem, ByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::string ref = accounted_run(1, false);
  EXPECT_NE(ref.find("mem nranks=6"), std::string::npos) << ref;
  // The instrumented subsystems must actually show up.
  for (const char* tag : {"forest_leaves", "hash_slots", "balance_staging",
                          "dirty_log", "linearize"}) {
    EXPECT_NE(ref.find(tag), std::string::npos) << tag << "\n" << ref;
  }
  EXPECT_NE(ref.find("phase balance/local"), std::string::npos) << ref;
  EXPECT_NE(ref.find("phase balance/rebalance"), std::string::npos) << ref;
  for (int threads : {4, 8}) {
    EXPECT_EQ(accounted_run(threads, false), ref) << "threads=" << threads;
  }
}

TEST(Mem, ScrambledDeliveryDoesNotChangeAccounting) {
  ThreadGuard guard;
  const std::string ref = accounted_run(1, false);
  EXPECT_EQ(accounted_run(1, true), ref);
  EXPECT_EQ(accounted_run(4, true), ref);
}

TEST(Mem, EachCoreLayoutRepeatsDeterministically) {
  ThreadGuard guard;
  // The layouts size different record types, so their peaks may (and do)
  // differ from each other — but each layout must reproduce itself
  // byte-for-byte at any thread count.
  for (const CoreLayout layout : {CoreLayout::kAoS, CoreLayout::kKeySoA}) {
    const ScopedCoreLayout scoped(layout);
    const std::string ref = accounted_run(1, false);
    EXPECT_FALSE(ref.empty());
    EXPECT_EQ(accounted_run(4, false), ref)
        << "layout=" << static_cast<int>(layout);
  }
}

// ------------------------------------------------------------- overhead --

TEST(Mem, DisabledOverheadIsTiny) {
  ASSERT_FALSE(obs::mem_enabled());
  constexpr int kIters = 200000;
  Timer t;
  for (int i = 0; i < kIters; ++i) {
    obs::mem_charge(0, MemTag::kOther, 64);
    obs::mem_release(0, MemTag::kOther, 64);
    MemScope s(MemTag::kOther, 64);
  }
  // With no session installed each hook is one relaxed load and a branch;
  // 200k iterations take microseconds.  The bound is absurdly generous to
  // stay robust on a loaded CI box — it guards against accidentally
  // adding a lock or an allocation to the disabled path.
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace octbal
