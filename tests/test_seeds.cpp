/// \file test_seeds.cpp
/// \brief Validation of seed octants (Section IV): for every (o, r) pair in
/// a small domain, balancing the seeds inside r as root must reproduce
/// Tk(o) ∩ r exactly, and the seed sets must stay O(1)-small.

#include <gtest/gtest.h>

#include "core/balance_subtree.hpp"
#include "core/linear.hpp"
#include "core/ripple.hpp"
#include "core/seeds.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

/// Enumerate every valid octant of level in [lmin, lmax] inside root.
template <int D>
std::vector<Octant<D>> all_octants(int lmin, int lmax) {
  std::vector<Octant<D>> out;
  std::vector<Octant<D>> frontier{root_octant<D>()};
  for (int lvl = 1; lvl <= lmax; ++lvl) {
    std::vector<Octant<D>> next;
    for (const auto& p : frontier)
      for (int c = 0; c < num_children<D>; ++c) next.push_back(child(p, c));
    frontier = next;
    if (lvl >= lmin) out.insert(out.end(), next.begin(), next.end());
  }
  if (lmin == 0) out.push_back(root_octant<D>());
  return out;
}

/// Oracle: the part of the precomputed Tk(o) tree \p t inside r.
template <int D>
std::vector<Octant<D>> oracle_overlap(const std::vector<Octant<D>>& t,
                                      const Octant<D>& r) {
  std::vector<Octant<D>> s;
  const auto [lo, hi] = overlapping_range(t, r);
  for (std::size_t i = lo; i < hi; ++i) {
    // A leaf coarser than r clips to r itself.
    s.push_back(contains(t[i], r) ? r : t[i]);
  }
  return s;
}

template <int D>
void exhaustive_seed_check(int lmax, std::size_t size_bound) {
  const auto octs = all_octants<D>(1, lmax);
  std::size_t worst = 0;
  for (int k = 1; k <= D; ++k) {
    for (const auto& o : octs) {
      const auto t = tk_of(o, k, root_octant<D>());
      for (const auto& r : octs) {
        if (r.level > o.level || overlaps(o, r)) continue;
        const auto seeds = balance_seeds(o, r, k);
        worst = std::max(worst, seeds.size());
        const auto want = oracle_overlap(t, r);
        if (seeds.empty()) {
          // No split: r must be balanced with o (every oracle leaf in r is
          // at least r-sized).
          for (const auto& leaf : want) {
            ASSERT_GE(size_exp(leaf), size_exp(r))
                << "missing seeds: o=" << to_string(o) << " r=" << to_string(r)
                << " k=" << k;
          }
          continue;
        }
        for (const auto& s : seeds) {
          ASSERT_TRUE(contains(r, s)) << "seed outside r";
        }
        const auto rebuilt = balance_subtree_new(seeds, k, r);
        ASSERT_EQ(rebuilt, want)
            << "o=" << to_string(o) << " r=" << to_string(r) << " k=" << k
            << " seeds=" << seeds.size();
      }
    }
  }
  // The paper proves a 3^(d-1) bound on a minimal seed set; our closure adds
  // at most a small constant factor and must stay O(1) regardless of the
  // distance between o and r.
  EXPECT_LE(worst, size_bound) << "seed sets are not O(1)";
}

TEST(SeedsExhaustive, OneD) { exhaustive_seed_check<1>(6, 2); }
TEST(SeedsExhaustive, TwoD) { exhaustive_seed_check<2>(4, 8); }
TEST(SeedsExhaustive, ThreeD) { exhaustive_seed_check<3>(3, 27); }

TEST(Seeds, FarAwayOctantNeedsNoSeeds) {
  // o so far from r that Tk(o) is coarser than r everywhere inside r.
  const coord_t h = root_len<2> / 16;
  Oct2 o{{0, 0}, 4};
  Oct2 r{{14 * h, 14 * h}, 4};  // same size, far away: always balanced
  EXPECT_TRUE(balance_seeds(o, r, 1).empty());
  EXPECT_TRUE(balance_seeds(o, r, 2).empty());
}

TEST(Seeds, AdjacentDeepOctantSplitsCoarseNeighbor) {
  // A deep octant next to a much coarser one: seeds must be produced.
  const auto root = root_octant<2>();
  auto o = child(child(child(child(root, 1), 0), 0), 0);  // deep in child 1
  const auto r = child(root, 0);                          // coarse neighbor
  const auto seeds = balance_seeds(o, r, 1);
  EXPECT_FALSE(seeds.empty());
  for (const auto& s : seeds) EXPECT_TRUE(contains(r, s));
}

TEST(Seeds, WorkIsIndependentOfDistance) {
  // The number of seeds does not grow with the distance between o and r:
  // the motivating property of Section IV.
  std::size_t sizes[2] = {0, 0};
  int idx = 0;
  for (coord_t shift : {coord_t{2}, coord_t{512}}) {
    const coord_t h = root_len<3> / 1024;
    Oct3 o{{shift * h, 0, 0}, 10};
    auto o2 = o;
    o2.x[0] = root_len<3> / 2 + shift * h;  // outside r, distance ~shift
    Oct3 query{{0, 0, 0}, 1};
    const auto seeds = balance_seeds(o2, query, 2);
    sizes[idx++] = seeds.size();
  }
  EXPECT_LE(sizes[1], sizes[0] + 2);
}

}  // namespace
}  // namespace octbal
