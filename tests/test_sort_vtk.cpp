/// \file test_sort_vtk.cpp
/// \brief Tests for the Morton radix sort (exact equivalence with
/// comparison sorting, both regimes, exterior octants, duplicates) and the
/// legacy-VTK writer (structural validity of the emitted grid).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/sort.hpp"
#include "util/rng.hpp"
#include "util/vtk.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

template <typename T>
class SortTest : public ::testing::Test {};
template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(SortTest, Dims);

TYPED_TEST(SortTest, MatchesComparisonSortBothRegimes) {
  constexpr int D = TypeParam::d;
  Rng rng(808);
  const auto root = root_octant<D>();
  // Below and above the radix threshold.
  for (std::size_t n : {0u, 1u, 50u, 255u, 256u, 4000u}) {
    std::vector<Octant<D>> a;
    a.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto o = random_octant(rng, root, max_level<D>);
      if (rng.chance(0.2)) o.x[0] -= root_len<D>;  // exterior mix
      a.push_back(o);
    }
    // Inject duplicates.
    if (n > 10) {
      a[3] = a[7];
      a[n / 2] = a[n / 3];
    }
    auto b = a;
    sort_octants(a);
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TYPED_TEST(SortTest, AncestorPrecedesDescendantAfterSort) {
  constexpr int D = TypeParam::d;
  Rng rng(809);
  const auto root = root_octant<D>();
  std::vector<Octant<D>> a;
  for (int i = 0; i < 2000; ++i) {
    const auto o = random_octant(rng, root, 8);
    a.push_back(o);
    if (o.level > 0) a.push_back(parent(o));
  }
  sort_octants(a);
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (is_ancestor(a[i + 1], a[i])) {
      FAIL() << "descendant " << to_string(a[i]) << " precedes ancestor "
             << to_string(a[i + 1]);
    }
  }
}

TEST(Vtk, StructureMatchesForest) {
  Forest<2> f(Connectivity<2>::brick({2, 1}), 2, 2);
  const std::string vtk = to_vtk(f);
  const auto n = f.global_num_octants();
  // Header + counts.
  EXPECT_NE(vtk.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(vtk.find("POINTS " + std::to_string(n * 4) + " double"),
            std::string::npos);
  EXPECT_NE(vtk.find("CELLS " + std::to_string(n) + " " +
                     std::to_string(n * 5)),
            std::string::npos);
  EXPECT_NE(vtk.find("SCALARS level int 1"), std::string::npos);
  EXPECT_NE(vtk.find("SCALARS rank int 1"), std::string::npos);
  // Quad cell type 9 appears n times after CELL_TYPES.
  const auto pos = vtk.find("CELL_TYPES");
  ASSERT_NE(pos, std::string::npos);
  std::istringstream in(vtk.substr(pos));
  std::string tok;
  in >> tok >> tok;  // "CELL_TYPES" n
  std::size_t quads = 0;
  int t;
  while (in >> t && quads < n + 5) {
    if (t == 9) ++quads;
    if (quads == n) break;
  }
  EXPECT_EQ(quads, n);
}

TEST(Vtk, ThreeDHexahedraCoverUnitBricks) {
  Forest<3> f(Connectivity<3>::brick({1, 1, 1}), 1, 1);
  const std::string vtk = to_vtk(f);
  // 8 leaves, 64 points, hexahedron type 12.
  EXPECT_NE(vtk.find("POINTS 64 double"), std::string::npos);
  EXPECT_NE(vtk.find("\n12\n"), std::string::npos);
  // All coordinates within [0, 1].
  std::istringstream in(vtk.substr(vtk.find("POINTS")));
  std::string tok;
  in >> tok >> tok >> tok;
  for (int i = 0; i < 64 * 3; ++i) {
    double v;
    ASSERT_TRUE(static_cast<bool>(in >> v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Vtk, WritesIceSheetFile) {
  Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 2, 1);
  icesheet_refine(f, 3);
  EXPECT_TRUE(write_vtk(f, "/tmp/octbal_icesheet.vtk"));
}

}  // namespace
}  // namespace octbal
