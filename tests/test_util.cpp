/// \file test_util.cpp
/// \brief Tests for the utility layer: deterministic RNG, octant hash set
/// (growth, tagging, instrumentation), CLI parsing, and SVG rendering.

#include <gtest/gtest.h>

#include <set>

#include "core/octant_hash.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/svg.hpp"
#include "forest/forest.hpp"
#include <fstream>

namespace octbal {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    differs = differs || a2.next() != c.next();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(OctantHash, InsertContainsGrowth) {
  HashStats stats;
  OctantHashSet<2> set(4, &stats);
  Rng rng(5);
  const auto root = root_octant<2>();
  std::set<std::pair<morton_t, int>> reference;
  for (int i = 0; i < 2000; ++i) {
    const auto o = random_octant(rng, root, 8);
    const bool inserted = set.insert(o);
    const bool fresh =
        reference.insert({morton_key(o), o.level}).second;
    EXPECT_EQ(inserted, fresh);
  }
  EXPECT_EQ(set.size(), reference.size());
  EXPECT_GE(stats.queries, 2000u);
  // Membership agrees with the reference for fresh probes.
  Rng rng2(5);
  for (int i = 0; i < 2000; ++i) {
    const auto o = random_octant(rng2, root, 8);
    EXPECT_TRUE(set.contains(o));
  }
}

/// Reference model of the open-addressing set: same hash, same capacity
/// schedule, but query probes and rehash probes tallied independently so
/// the production counters can be checked for *exact* equality.  Guards
/// the Section III collision metric against rehash pollution: grow() used
/// to funnel its internal re-probes into HashStats::probes, inflating the
/// probes-per-query ratio reported by bench_subtree.
struct RefHash {
  struct Slot {
    Oct2 oct{};
    bool used = false;
  };
  std::vector<Slot> slots{std::vector<Slot>(16)};
  std::size_t size = 0;
  std::uint64_t queries = 0, probes = 0, rehash_probes = 0;
  int grows = 0;

  std::size_t find(const Oct2& o, std::uint64_t* counter) const {
    const std::size_t mask = slots.size() - 1;
    std::size_t i = octant_hash(o) & mask;
    while (slots[i].used && !(slots[i].oct == o)) {
      ++*counter;
      i = (i + 1) & mask;
    }
    return i;
  }

  void insert(const Oct2& o) {
    ++queries;
    const std::size_t i = find(o, &probes);
    if (slots[i].used) return;
    slots[i] = Slot{o, true};
    ++size;
    if (size * 2 > slots.size()) {
      ++grows;
      std::vector<Slot> old;
      old.swap(slots);
      slots.resize(old.size() * 2);
      for (const Slot& s : old) {
        if (s.used) slots[find(s.oct, &rehash_probes)] = s;
      }
    }
  }

  void contains(const Oct2& o) {
    ++queries;
    (void)find(o, &probes);
  }
};

TEST(OctantHash, GrowthExcludesRehashProbesFromQueryMetric) {
  HashStats stats;
  OctantHashSet<2> set(4, &stats);  // capacity 16, same as the reference
  RefHash ref;
  Rng rng(42);
  const auto root = root_octant<2>();
  for (int i = 0; i < 3000; ++i) {
    const auto o = random_octant(rng, root, 9);
    set.insert(o);
    ref.insert(o);
    if (i % 4 == 0) {
      const auto probe = random_octant(rng, root, 9);
      set.contains(probe);
      ref.contains(probe);
    }
  }
  ASSERT_GT(ref.grows, 3) << "the schedule must cross several resizes";
  ASSERT_GT(ref.rehash_probes, 0u)
      << "rehashing this many octants must collide at least once";
  EXPECT_EQ(set.size(), ref.size);
  EXPECT_EQ(stats.queries, ref.queries);
  // Exact counts: query probes must not include the internal rehash walk.
  EXPECT_EQ(stats.probes, ref.probes);
  EXPECT_EQ(stats.rehash_probes, ref.rehash_probes);
}

TEST(OctantHash, TaggingAndCollect) {
  OctantHashSet<2> set;
  const auto root = root_octant<2>();
  const auto a = child(root, 0), b = child(root, 1);
  set.insert(a);
  set.insert(b);
  set.tag(a);
  EXPECT_TRUE(set.is_tagged(a));
  EXPECT_FALSE(set.is_tagged(b));
  std::vector<Oct2> all, untagged;
  set.collect(all);
  set.collect(untagged, /*skip_tagged=*/true);
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(untagged.size(), 1u);
  EXPECT_EQ(untagged[0], b);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog",     "--ranks", "8",          "--alpha=0.5",
                        "--verbose", "--name",  "hello_world"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("ranks", 1), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get_string("name", ""), "hello_world");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Svg, RendersEveryLeafAsARect) {
  Rng rng(3);
  const auto root = root_octant<2>();
  const auto t = random_complete_tree(rng, root, 4, 30);
  const std::string svg = render_svg(t);
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, t.size());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, ForestLayoutScalesWithBrick) {
  Forest<2> f(Connectivity<2>::brick({3, 2}), 1, 1);
  const std::string svg = render_svg(f.gather(), f.connectivity());
  // Width = 3 trees * 256 px, height = 2 * 256 px.
  EXPECT_NE(svg.find("width=\"768\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"512\""), std::string::npos);
}

TEST(Svg, WriteFileRoundTrip) {
  const std::string path = "/tmp/octbal_svg_test.svg";
  EXPECT_TRUE(write_file(path, "<svg/>"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "<svg/>");
}

}  // namespace
}  // namespace octbal
