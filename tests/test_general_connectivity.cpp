/// \file test_general_connectivity.cpp
/// \brief Tests for general (non-lattice) 2D connectivities: rings glued
/// through explicit face tables, and Möbius bands whose wrap link reverses
/// the tangential axis.  The untwisted ring must reproduce the periodic
/// brick *exactly* (a strong cross-implementation oracle); the twisted
/// ring is checked against the serial reference and the definition-level
/// balance predicate.

#include <gtest/gtest.h>

#include "core/neighborhood.hpp"
#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "forest/mesh.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

TEST(GeneralConnectivity, ValidatesRingsAndMoebius) {
  for (int n : {1, 2, 3, 5}) {
    EXPECT_TRUE(Connectivity<2>::ring(n, false).validate()) << "ring " << n;
    EXPECT_TRUE(Connectivity<2>::moebius(n).validate()) << "moebius " << n;
  }
}

TEST(GeneralConnectivity, MutualityViolationIsDetected) {
  // Glue 0:+x to 1:-x but claim the reverse points elsewhere.
  std::vector<std::array<FaceGlue, 4>> faces(2);
  faces[0][1] = FaceGlue{1, 0, false};
  faces[1][0] = FaceGlue{1, 1, false};  // wrong: should point back to tree 0
  const auto c = Connectivity<2>::general(2, std::move(faces));
  EXPECT_FALSE(c.validate());
}

TEST(GeneralConnectivity, UntwistedRingNeighborMatchesPeriodicBrick) {
  const auto ring = Connectivity<2>::ring(2, false);
  std::array<bool, 2> per{true, false};
  const auto brick = Connectivity<2>::brick({2, 1}, per);
  Rng rng(42);
  const auto root = root_octant<2>();
  for (int i = 0; i < 500; ++i) {
    const auto o = random_octant(rng, root, 6);
    const int t = static_cast<int>(rng.below(2));
    for (const auto& off : full_offsets<2>()) {
      const auto a = ring.neighbor(t, o, off);
      const auto b = brick.neighbor(t, o, off);
      ASSERT_EQ(a.has_value(), b.has_value())
          << "t=" << t << " o=" << to_string(o) << " off=(" << off[0] << ","
          << off[1] << ")";
      if (!a) continue;
      EXPECT_EQ(a->tree, b->tree);
      EXPECT_EQ(a->oct, b->oct);
      // Transforms agree as maps (compare on the neighbor octant).
      EXPECT_EQ(a->xform.apply(a->oct), b->xform.apply(b->oct));
    }
  }
}

TEST(GeneralConnectivity, MoebiusFaceTransformFlipsTangential) {
  const auto c = Connectivity<2>::moebius(1);
  const coord_t R = root_len<2>;
  Oct2 o{{R - R / 4, R / 2}, 2};  // touching the +x face, h = R/4
  const auto nb = c.neighbor(0, o, {1, 0});
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->tree, 0);
  // Lands at the -x face with the tangential coordinate reversed:
  // y' = R - y - h = R - R/2 - R/4 = R/4.
  EXPECT_EQ(nb->oct.x[0], 0);
  EXPECT_EQ(nb->oct.x[1], R / 4);
  // The transform maps the neighbor back onto the exterior source image.
  const auto ext = nb->xform.apply(nb->oct);
  EXPECT_EQ(ext.x[0], R);
  EXPECT_EQ(ext.x[1], R / 2);
}

template <typename Refiner>
void expect_distributed_matches_serial(const Connectivity<2>& conn, int ranks,
                                       int k, Refiner&& refine,
                                       const char* label) {
  Forest<2> f(conn, ranks, 1);
  f.refine(refine, true);
  f.partition_uniform();
  const auto want = forest_balance_serial(f.gather(), conn, k);
  SimComm comm(ranks);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = k;
  balance(f, opt, comm);
  EXPECT_EQ(f.gather(), want) << label;
  EXPECT_TRUE(forest_is_balanced(f.gather(), conn, k)) << label;
}

TEST(GeneralConnectivity, UntwistedRingBalanceEqualsPeriodicBrick) {
  // The same mesh balanced under the two connectivity implementations must
  // coincide leaf for leaf.
  std::array<bool, 2> per{true, false};
  for (int k = 1; k <= 2; ++k) {
    Rng rng(100 + k);
    auto pred = [&](const TreeOct<2>& to) {
      return to.oct.level < 5 && rng.chance(0.35);
    };
    Forest<2> a(Connectivity<2>::ring(2, false), 3, 1);
    a.refine(pred, true);
    Rng rng2(100 + k);
    auto pred2 = [&](const TreeOct<2>& to) {
      return to.oct.level < 5 && rng2.chance(0.35);
    };
    Forest<2> b(Connectivity<2>::brick({2, 1}, per), 3, 1);
    b.refine(pred2, true);
    ASSERT_EQ(a.gather(), b.gather());
    SimComm ca(3), cb(3);
    BalanceOptions opt = BalanceOptions::new_config();
    opt.k = k;
    balance(a, opt, ca);
    balance(b, opt, cb);
    EXPECT_EQ(a.gather(), b.gather()) << "k=" << k;
  }
}

TEST(GeneralConnectivity, MoebiusBalanceMatchesSerial) {
  for (int n : {1, 3}) {
    for (int ranks : {1, 4}) {
      for (int k = 1; k <= 2; ++k) {
        Rng rng(n * 100 + ranks * 10 + k);
        expect_distributed_matches_serial(
            Connectivity<2>::moebius(n), ranks, k,
            [&](const TreeOct<2>& to) {
              return to.oct.level < 5 && rng.chance(0.35);
            },
            "moebius");
      }
    }
  }
}

TEST(GeneralConnectivity, MoebiusEdgeRefinementPropagatesThroughTwist) {
  // Refine deeply at the twist link's top edge of tree n-1: after balance,
  // the *bottom* edge of tree 0 must have been forced fine (the flip maps
  // high y to low y).
  const int n = 2;
  Forest<2> f(Connectivity<2>::moebius(n), 1, 1);
  f.refine(
      [&](const TreeOct<2>& to) {
        return to.tree == n - 1 && to.oct.level < 6 &&
               to.oct.x[0] + static_cast<coord_t>(side_len(to.oct)) ==
                   root_len<2> &&
               to.oct.x[1] + static_cast<coord_t>(side_len(to.oct)) ==
                   root_len<2>;
      },
      true);
  SimComm comm(1);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;
  balance(f, opt, comm);
  EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 1));
  // Tree 0 must now hold fine octants at its LOW-y corner of the -x face.
  int fine_low = 0, fine_high = 0;
  for (const auto& to : f.gather()) {
    if (to.tree != 0 || to.oct.x[0] != 0 || to.oct.level < 4) continue;
    if (to.oct.x[1] < root_len<2> / 4) ++fine_low;
    if (to.oct.x[1] >= 3 * (root_len<2> / 4)) ++fine_high;
  }
  EXPECT_GT(fine_low, 0) << "twist did not propagate to the flipped side";
  EXPECT_EQ(fine_high, 0) << "refinement leaked to the untwisted side";
}

TEST(GeneralConnectivity, MoebiusMeshHasNoBoundaryOnGluedFaces) {
  Forest<2> f(Connectivity<2>::moebius(3), 1, 2);
  const auto s = analyze_mesh(f.gather(), f.connectivity());
  // Only the +-y faces are physical: 2 sides x (3 trees x 4 cells).
  EXPECT_EQ(s.boundary_faces, 2u * 3u * 4u);
  EXPECT_EQ(s.bad_faces, 0u);
}

TEST(GeneralConnectivity, GhostsAcrossTheTwist) {
  Forest<2> f(Connectivity<2>::moebius(2), 2, 2);
  SimComm comm(2);
  const auto g = build_ghost_layer(f, 1, comm);
  // Uniform mesh on 2 ranks (one tree each): each rank sees the other's
  // edge columns through both links.
  ASSERT_FALSE(g.per_rank[0].empty());
  for (const auto& e : g.per_rank[0]) {
    EXPECT_EQ(e.owner, 1);
    EXPECT_EQ(e.oct.tree, 1);
  }
}

TEST(GeneralConnectivity, SingularCornersReturnNoNeighbor) {
  // At the Möbius twist, the corner diagonal through the glued face of a
  // boundary corner has no consistent two-path continuation.
  const auto c = Connectivity<2>::moebius(1);
  const coord_t R = root_len<2>;
  Oct2 top_right{{R - R / 4, R - R / 4}, 2};
  const auto nb = c.neighbor(0, top_right, {1, 1});
  EXPECT_FALSE(nb.has_value());
}

}  // namespace
}  // namespace octbal

namespace octbal {
namespace {

TEST(GeneralConnectivity, OldPipelineHandlesReflectedExteriorConstraints) {
  // The old configuration ships raw octants and rebalances whole
  // partitions with exterior auxiliaries; across a twisted gluing those
  // auxiliaries are *reflected* exterior octants.  Both pipelines must
  // still produce the serial result.
  for (int ranks : {1, 3}) {
    for (int k = 1; k <= 2; ++k) {
      Rng rng(7000 + ranks * 10 + k);
      Forest<2> a(Connectivity<2>::moebius(2), ranks, 1);
      a.refine(
          [&](const TreeOct<2>& to) {
            return to.oct.level < 5 && rng.chance(0.35);
          },
          true);
      a.partition_uniform();
      const auto want = forest_balance_serial(a.gather(), a.connectivity(), k);
      SimComm comm(ranks);
      BalanceOptions opt = BalanceOptions::old_config();
      opt.k = k;
      balance(a, opt, comm);
      EXPECT_EQ(a.gather(), want) << "old ranks=" << ranks << " k=" << k;
    }
  }
}

TEST(GeneralConnectivity, FusedNotifyOnMoebius) {
  Rng rng(8001);
  Forest<2> f(Connectivity<2>::moebius(3), 5, 1);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 4 && rng.chance(0.4); },
      true);
  f.partition_uniform();
  const auto want = forest_balance_serial(f.gather(), f.connectivity(), 2);
  SimComm comm(5);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.notify_carries_queries = true;
  balance(f, opt, comm);
  EXPECT_EQ(f.gather(), want);
}

}  // namespace
}  // namespace octbal
