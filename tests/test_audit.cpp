/// \file test_audit.cpp
/// \brief Self-tests of the randomized invariant-audit subsystem: a clean
/// pipeline must survive a seed sweep, and a deliberately injected balance
/// bug (a skipped insulation-layer neighbor) must be caught by the
/// invariants and reduced by the shrinker to a small replayable repro.

#include <gtest/gtest.h>

#include <algorithm>

#include "audit/fuzzer.hpp"
#include "audit/invariants.hpp"
#include "audit/shrinker.hpp"

namespace octbal::audit {
namespace {

TEST(Audit, CleanPipelinePassesSeedSweep) {
  FuzzOptions opt;
  opt.seeds = 50;
  opt.seed0 = 2012;
  const FuzzSummary sum = Fuzzer(opt).run();
  ASSERT_TRUE(sum.ok()) << (sum.failures.empty()
                                ? std::string("counted failures without reports")
                                : sum.failures.front().repro);
  EXPECT_EQ(sum.cases_run, 50);
}

TEST(Audit, ParallelJobsMatchSerialVerdicts) {
  // The strided jobs>1 fan-out must reach the same verdicts (thread-sweep
  // checks are disabled there, so only compare pass/fail and seeds).
  FuzzOptions opt;
  opt.seeds = 24;
  opt.seed0 = 7;
  opt.shrink = false;
  const FuzzSummary serial = Fuzzer(opt).run();
  opt.jobs = 2;
  const FuzzSummary par2 = Fuzzer(opt).run();
  EXPECT_EQ(par2.cases_run, 24);
  EXPECT_EQ(serial.failed, par2.failed);
}

TEST(Audit, InjectedBalanceBugIsCaughtAndShrunk) {
  FuzzOptions opt;
  opt.seeds = 120;
  opt.seed0 = 1;
  opt.inject = FaultInjection::kSkipInsulationNeighbor;
  opt.max_failures = 4;
  const FuzzSummary sum = Fuzzer(opt).run();
  ASSERT_GT(sum.failed, 0)
      << "fault injection produced no failures: the invariants have no teeth";
  ASSERT_FALSE(sum.failures.empty());

  std::size_t smallest = SIZE_MAX;
  for (const auto& f : sum.failures) {
    // The injected defect loses balance constraints, so it must surface as
    // a wrong balanced forest.
    EXPECT_TRUE(f.invariant == "balance" || f.invariant == "serial_diff")
        << f.invariant << ": " << f.detail;
    EXPECT_NE(f.repro.find("TEST(FuzzRegression, Seed"), std::string::npos);
    EXPECT_NE(f.repro.find("forest_balance_serial"), std::string::npos);
    // The repro must pin the core layout the failure was found under.
    EXPECT_NE(f.repro.find("ScopedCoreLayout layout(CoreLayout::"),
              std::string::npos);
    EXPECT_FALSE(f.config.empty());
    EXPECT_GT(f.repro_octants, 0u);
    smallest = std::min(smallest, f.repro_octants);
  }
  EXPECT_LE(smallest, 20u)
      << "shrinker failed to reduce any failure to a small repro";
}

TEST(Audit, InjectedOrderDependentReduceIsCaught) {
  // The second fault-injection channel: phase 4 folds response senders
  // through a delivery-order-sensitive hash and drops a query group when
  // the fold lands odd.  Under canonical delivery the damage is a
  // deterministic wrong forest (balance / serial_diff); under scrambled
  // delivery the forest changes with the order, which only the scramble
  // invariant can see.
  FuzzOptions opt;
  opt.seeds = 60;
  opt.seed0 = 1;
  opt.inject = FaultInjection::kOrderDependentReduce;
  opt.max_failures = 4;
  const FuzzSummary sum = Fuzzer(opt).run();
  ASSERT_GT(sum.failed, 0)
      << "fault injection produced no failures: the invariants have no teeth";
  for (const auto& f : sum.failures) {
    EXPECT_TRUE(f.invariant == "balance" ||
                f.invariant == "scramble_invariance" ||
                f.invariant == "serial_diff")
        << f.invariant << ": " << f.detail;
    EXPECT_NE(f.repro.find("TEST(FuzzRegression, Seed"), std::string::npos);
    EXPECT_FALSE(f.config.empty());
  }
}

TEST(Audit, InjectedStaleMarkerNudgeIsCaughtAndShrunk) {
  // The repartition fault channel: the marker nudge migrates the octants
  // and charges the traffic but skips the refresh_markers() rebuild —
  // "moved the data, forgot the index".  Only the
  // repartition/preserves_content invariant looks at the partition index,
  // so every failure must surface there, and the shrinker must still
  // reduce the failing mesh (the fault needs a nudge that actually moves
  // octants, which survives coarsening down to a few dozen leaves).
  FuzzOptions opt;
  opt.seeds = 120;
  opt.seed0 = 1;
  opt.inject = FaultInjection::kStaleMarkerNudge;
  opt.max_failures = 4;
  const FuzzSummary sum = Fuzzer(opt).run();
  ASSERT_GT(sum.failed, 0)
      << "fault injection produced no failures: the invariant has no teeth";
  std::size_t smallest = SIZE_MAX;
  for (const auto& f : sum.failures) {
    EXPECT_EQ(f.invariant, "repartition/preserves_content")
        << f.invariant << ": " << f.detail;
    EXPECT_NE(f.repro.find("repartition(f, ropt, &comm)"), std::string::npos);
    EXPECT_NE(f.repro.find("ropt.inject"), std::string::npos);
    EXPECT_FALSE(f.config.empty());
    EXPECT_GT(f.repro_octants, 0u);
    smallest = std::min(smallest, f.repro_octants);
  }
  EXPECT_LE(smallest, 32u)
      << "shrinker failed to reduce any failure to a small repro";
}

TEST(Audit, StaleMarkerNudgeReplaysDeterministically) {
  // Seed 18 draws a kNudge case whose nudge moves octants (covered by the
  // sweep above); the pinned replay must fail the same way every time.
  FuzzOptions opt;
  opt.inject = FaultInjection::kStaleMarkerNudge;
  opt.shrink = false;
  const Fuzzer fz(opt);
  CaseConfig cfg = random_case_config(18);
  ASSERT_EQ(cfg.repartition, RepartitionKind::kNudge);
  cfg.opt.inject = opt.inject;
  FuzzFailure a, b;
  ASSERT_FALSE(fz.run_case(cfg, &a));
  ASSERT_FALSE(fz.run_case(cfg, &b));
  EXPECT_EQ(a.invariant, "repartition/preserves_content") << a.detail;
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.repro, b.repro);
}

TEST(Audit, ScrambleInvariantCatchesOrderDependence) {
  // Seed 173 draws a scrambled-delivery case where the injected fold picks
  // different query groups to drop under the two delivery orders: every
  // per-order run is individually plausible, so only comparing the two
  // forests (the scramble invariant) exposes the defect.  This is the
  // round-trip proof that the invariant has teeth beyond re-checking
  // balance.
  FuzzOptions opt;
  opt.inject = FaultInjection::kOrderDependentReduce;
  opt.shrink = false;
  const Fuzzer fz(opt);
  CaseConfig cfg = random_case_config(173);
  ASSERT_TRUE(cfg.scramble);
  cfg.opt.inject = opt.inject;
  FuzzFailure f;
  ASSERT_FALSE(fz.run_case(cfg, &f));
  EXPECT_EQ(f.invariant, "scramble_invariance") << f.detail;
  EXPECT_NE(f.detail.find("delivery order"), std::string::npos) << f.detail;
}

TEST(Audit, FailuresReplayDeterministically) {
  FuzzOptions opt;
  opt.inject = FaultInjection::kSkipInsulationNeighbor;
  const Fuzzer fz(opt);
  // Seed 9 is a known failing seed under injection (covered by the sweep
  // above); replaying it twice must give byte-identical reports.
  CaseConfig cfg = random_case_config(9);
  cfg.opt.inject = opt.inject;
  FuzzFailure a, b;
  ASSERT_FALSE(fz.run_case(cfg, &a));
  ASSERT_FALSE(fz.run_case(cfg, &b));
  EXPECT_EQ(a.invariant, b.invariant);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.repro, b.repro);
  EXPECT_EQ(a.repro_octants, b.repro_octants);
}

TEST(Audit, ShrunkInputStaysValidForest) {
  // Shrinking must preserve per-tree completeness at every accepted step;
  // verify the end state explicitly for a known failing case.
  CaseConfig cfg = random_case_config(9);
  cfg.opt.inject = FaultInjection::kSkipInsulationNeighbor;
  ASSERT_EQ(cfg.dim, 2);
  const CaseData<2> data = make_case<2>(cfg);
  const InvariantReport rep = Invariants::check<2>(cfg, data);
  ASSERT_FALSE(rep.ok);
  const ShrinkOutcome<2> s = Shrinker::shrink<2>(cfg, data, rep);
  EXPECT_LT(s.leaves.size(), data.leaves.size());
  EXPECT_FALSE(s.report.ok);
  Forest<2> f(data.conn, s.cfg.ranks, s.leaves);
  EXPECT_TRUE(f.is_valid());
}

TEST(Audit, SfcBisectionReaches3dMinimumUnderTightBudget) {
  // Seed 18 under kOrderDependentReduce is a deep 3D case (778 leaves)
  // whose failure lives in one window of the space-filling curve.  Pure
  // ancestor collapse walks toward the minimum one accepted coarsening
  // at a time and, with only 15 evals, stalls at 71 octants; the SFC
  // bisection stage removes half the curve per accepted eval and reaches
  // the 29-octant minimum inside the same budget.  Pin both the tight-
  // budget quality and the full-budget minimum, plus validity of the
  // shrunk forest (bisected halves are re-completed per tree).
  CaseConfig cfg = random_case_config(18);
  cfg.opt.inject = FaultInjection::kOrderDependentReduce;
  ASSERT_EQ(cfg.dim, 3);
  const CaseData<3> data = make_case<3>(cfg);
  ASSERT_GT(data.leaves.size(), 700u);
  const InvariantReport rep = Invariants::check<3>(cfg, data);
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.invariant, "balance") << rep.detail;

  const ShrinkOutcome<3> tight = Shrinker::shrink<3>(cfg, data, rep, 15);
  EXPECT_LT(tight.leaves.size(), 40u)
      << "bisection stage regressed: collapse-only stalls at ~71 here";
  EXPECT_LE(tight.evals, 15);

  const ShrinkOutcome<3> full = Shrinker::shrink<3>(cfg, data, rep);
  EXPECT_LT(full.leaves.size(), 40u);
  EXPECT_FALSE(full.report.ok);
  Forest<3> f(data.conn, full.cfg.ranks, full.leaves);
  EXPECT_TRUE(f.is_valid());
}

TEST(Audit, ShrinkPreservesDivergenceAttribution) {
  // The shrinker disables attribution inside its eval loop (it would
  // triple the cost of every probe) but must re-attribute the final
  // shrunk case, so the reported round/edge points at the minimized
  // repro's comm traffic.
  CaseConfig cfg = random_case_config(9);
  cfg.opt.inject = FaultInjection::kSkipInsulationNeighbor;
  ASSERT_EQ(cfg.dim, 2);
  const CaseData<2> data = make_case<2>(cfg);
  const InvariantReport rep = Invariants::check<2>(cfg, data);
  ASSERT_FALSE(rep.ok);
  EXPECT_GE(rep.divergent_round, 0) << rep.detail;
  EXPECT_FALSE(rep.flight_doc.empty());
  const ShrinkOutcome<2> s = Shrinker::shrink<2>(cfg, data, rep);
  ASSERT_FALSE(s.report.ok);
  EXPECT_GE(s.report.divergent_round, 0) << s.report.detail;
  EXPECT_FALSE(s.report.divergent_edge.empty());
  EXPECT_FALSE(s.report.flight_doc.empty());
  EXPECT_NE(s.report.detail.find("comm divergence"), std::string::npos)
      << s.report.detail;
}

TEST(Audit, AttributionCanBeDisabled) {
  CaseConfig cfg = random_case_config(9);
  cfg.opt.inject = FaultInjection::kSkipInsulationNeighbor;
  cfg.attribute_divergence = false;
  ASSERT_EQ(cfg.dim, 2);
  const CaseData<2> data = make_case<2>(cfg);
  const InvariantReport rep = Invariants::check<2>(cfg, data);
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.divergent_round, -1);
  EXPECT_TRUE(rep.flight_doc.empty());
  EXPECT_EQ(rep.detail.find("comm divergence"), std::string::npos)
      << rep.detail;
}

TEST(Audit, FuzzReportCarriesAttribution) {
  // The machine-readable sweep summary must expose the divergence so CI
  // can upload the flight logs of failing seeds.
  FuzzOptions opt;
  opt.seeds = 1;
  opt.seed0 = 9;
  opt.inject = FaultInjection::kSkipInsulationNeighbor;
  opt.shrink = false;
  const FuzzSummary sum = Fuzzer(opt).run();
  ASSERT_EQ(sum.failed, 1);
  const std::string doc = fuzz_summary_json(opt, sum);
  EXPECT_NE(doc.find("\"divergent_round\":"), std::string::npos);
  EXPECT_NE(doc.find("\"divergent_edge\":"), std::string::npos);
  EXPECT_NE(doc.find("\"octbal-flight-v1\""), std::string::npos);
}

TEST(Audit, CaseGenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADull}) {
    const CaseConfig a = random_case_config(seed);
    const CaseConfig b = random_case_config(seed);
    EXPECT_EQ(describe(a), describe(b));
    if (a.dim == 2) {
      EXPECT_EQ(make_case<2>(a).leaves, make_case<2>(b).leaves);
    } else {
      EXPECT_EQ(make_case<3>(a).leaves, make_case<3>(b).leaves);
    }
  }
}

TEST(Audit, CoreLayoutDimensionCoversBothKernels) {
  // The layout dimension must actually split the seed space: both the
  // packed-key SoA kernels and the AoS reference have to keep appearing
  // under fuzz fire, and describe() must carry the flag into reports.
  int keysoa = 0, aos = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const CaseConfig c = random_case_config(seed);
    (c.layout == CoreLayout::kKeySoA ? keysoa : aos)++;
    EXPECT_NE(describe(c).find(c.layout == CoreLayout::kKeySoA
                                   ? "layout=keysoa"
                                   : "layout=aos"),
              std::string::npos);
  }
  EXPECT_GT(keysoa, 8);
  EXPECT_GT(aos, 8);
}

}  // namespace
}  // namespace octbal::audit
