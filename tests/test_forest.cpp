/// \file test_forest.cpp
/// \brief Tests for connectivity, the distributed forest, refinement,
/// coarsening, SFC partitioning and owner lookups.

#include <gtest/gtest.h>

#include "core/ripple.hpp"
#include "forest/forest.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

TEST(Connectivity, UnitcubeHasNoNeighbors) {
  const auto c = Connectivity<2>::unitcube();
  EXPECT_EQ(c.num_trees(), 1);
  Oct2 o{{0, 0}, 1};
  EXPECT_FALSE(c.neighbor(0, o, {-1, 0}).has_value());
  EXPECT_TRUE(c.neighbor(0, o, {1, 0}).has_value());
  EXPECT_EQ(c.neighbor(0, o, {1, 0})->tree, 0);
  EXPECT_TRUE(c.validate());
}

TEST(Connectivity, BrickFaceNeighbors) {
  const auto c = Connectivity<2>::brick({3, 2});
  EXPECT_EQ(c.num_trees(), 6);
  EXPECT_EQ(c.tree_index({2, 1}), 5);
  EXPECT_EQ(c.tree_coords(4), (std::array<int, 2>{1, 1}));
  // The right half of tree 0 stepping right lands in tree 1.
  Oct2 o{{root_len<2> / 2, 0}, 1};
  const auto nb = c.neighbor(0, o, {1, 0});
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->tree, 1);
  EXPECT_EQ(nb->oct.x[0], 0);
  EXPECT_EQ(nb->step, (std::array<coord_t, 2>{1, 0}));
  EXPECT_TRUE(c.validate());
}

TEST(Connectivity, BrickCornerNeighborAcrossTrees) {
  const auto c = Connectivity<2>::brick({2, 2});
  // The top-right corner octant of tree 0 stepping diagonally reaches
  // tree 3's bottom-left.
  const coord_t h = root_len<2> / 2;
  Oct2 o{{h, h}, 1};
  const auto nb = c.neighbor(0, o, {1, 1});
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->tree, 3);
  EXPECT_EQ(nb->oct.x, (std::array<coord_t, 2>{0, 0}));
}

TEST(Connectivity, PeriodicWrap) {
  std::array<bool, 2> per{true, false};
  const auto c = Connectivity<2>::brick({2, 1}, per);
  Oct2 o{{0, 0}, 1};
  const auto nb = c.neighbor(0, o, {-1, 0});
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->tree, 1);  // wrapped around
  EXPECT_EQ(nb->oct.x[0], root_len<2> / 2);
  EXPECT_FALSE(c.neighbor(0, o, {0, -1}).has_value());  // y not periodic
  EXPECT_TRUE(c.validate());
}

TEST(Connectivity, Brick3D) {
  const auto c = Connectivity<3>::brick({3, 2, 1});
  EXPECT_EQ(c.num_trees(), 6);
  EXPECT_TRUE(c.validate());
  // Edge neighbor across two trees.
  const coord_t h = root_len<3> / 2;
  Oct3 o{{h, h, 0}, 1};
  const auto nb = c.neighbor(0, o, {1, 1, 0});
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->tree, 4);  // (1,1,0) in a 3x2x1 brick
}

template <int D>
Connectivity<D> brick2() {
  std::array<int, D> dims{};
  dims.fill(1);
  dims[0] = 2;
  return Connectivity<D>::brick(dims);
}

template <int D>
Connectivity<D> brick3() {
  std::array<int, D> dims{};
  dims.fill(1);
  dims[0] = 3;
  return Connectivity<D>::brick(dims);
}

template <typename T>
class ForestTest : public ::testing::Test {};
template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(ForestTest, Dims);

TYPED_TEST(ForestTest, UniformConstructionIsValid) {
  constexpr int D = TypeParam::d;
  const auto conn = brick2<D>();
  for (int p : {1, 3, 4}) {
    Forest<D> f(conn, p, 2);
    EXPECT_TRUE(f.is_valid());
    EXPECT_EQ(f.global_num_octants(),
              static_cast<std::uint64_t>(conn.num_trees())
                  << (2 * D));
    // Roughly even distribution.
    for (int r = 0; r < p; ++r) {
      EXPECT_LE(f.local(r).size(), f.global_num_octants() / p + 1);
    }
  }
}

TYPED_TEST(ForestTest, RefineAndCoarsenRoundTrip) {
  constexpr int D = TypeParam::d;
  Forest<D> f(Connectivity<D>::unitcube(), 2, 1);
  const auto before = f.gather();
  f.refine([](const TreeOct<D>&) { return true; }, false);
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(f.global_num_octants(),
            before.size() * static_cast<std::size_t>(num_children<D>));
  f.coarsen([](const TreeOct<D>&) { return true; });
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(f.gather(), before);
}

TYPED_TEST(ForestTest, RecursiveRefineRespectsPredicate) {
  constexpr int D = TypeParam::d;
  Forest<D> f(Connectivity<D>::unitcube(), 1, 0);
  // Refine only along the origin corner down to level 4.
  f.refine(
      [](const TreeOct<D>& to) {
        if (to.oct.level >= 4) return false;
        for (int i = 0; i < D; ++i) {
          if (to.oct.x[i] != 0) return false;
        }
        return true;
      },
      true);
  EXPECT_TRUE(f.is_valid());
  const auto all = f.gather();
  // Exactly one leaf per level 1..3 pattern: the corner chain.
  int deepest = 0;
  for (const auto& to : all) deepest = std::max(deepest, int(to.oct.level));
  EXPECT_EQ(deepest, 4);
}

TYPED_TEST(ForestTest, PartitionUniformEqualizes) {
  constexpr int D = TypeParam::d;
  Forest<D> f(brick2<D>(), 4, 1);
  // Skew the mesh heavily, then repartition.
  f.refine(
      [](const TreeOct<D>& to) {
        return to.tree == 0 && to.oct.level < 4;
      },
      true);
  SimComm comm(4);
  f.partition_uniform(&comm);
  EXPECT_TRUE(f.is_valid());
  const auto n = f.global_num_octants();
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(static_cast<double>(f.local(r).size()),
                static_cast<double>(n) / 4, 1.0);
  }
  EXPECT_GT(comm.stats().bytes, 0u);  // something actually moved
}

TYPED_TEST(ForestTest, PartitionWeightedFollowsWeights) {
  constexpr int D = TypeParam::d;
  Forest<D> f(Connectivity<D>::unitcube(), 4, 2);
  // Give all weight to the first half of the curve: ranks 0..1 should end
  // up holding it.
  const auto all = f.gather();
  const auto mid = all[all.size() / 2];
  f.partition_weighted([&](const TreeOct<D>& to) {
    return to < mid ? 3 : 1;
  });
  EXPECT_TRUE(f.is_valid());
  // The first half (weight 3x) is spread over ~3/4 of the ranks, so rank 0
  // holds fewer octants than uniform.
  EXPECT_LT(f.local(0).size(), all.size() / 4);
}

TYPED_TEST(ForestTest, OwnersOfFindsCorrectRanks) {
  constexpr int D = TypeParam::d;
  Forest<D> f(brick2<D>(), 5, 2);
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    // Pick a random owned octant and verify its owner range.
    const int r = static_cast<int>(rng.below(5));
    if (f.local(r).empty()) continue;
    const auto& to = f.local(r)[rng.below(f.local(r).size())];
    const auto [a, b] = f.owners_of(position_of(to), end_position_of(to));
    EXPECT_LE(a, r);
    EXPECT_GE(b, r);
    // A leaf is never split across ranks.
    EXPECT_EQ(a, b);
  }
}

TYPED_TEST(ForestTest, OwnersOfSpanningRange) {
  constexpr int D = TypeParam::d;
  Forest<D> f(Connectivity<D>::unitcube(), 4, 2);
  // The whole root is owned by everyone.
  const TreeOct<D> whole{0, root_octant<D>()};
  const auto [a, b] = f.owners_of(position_of(whole), end_position_of(whole));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 3);
}

TYPED_TEST(ForestTest, GatherIsSortedGlobalOrder) {
  constexpr int D = TypeParam::d;
  Forest<D> f(brick3<D>(), 3, 2);
  const auto all = f.gather();
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_TRUE(all[i] < all[i + 1]);
  }
}

TEST(ForestBalanceOracle, DetectsCrossTreeViolations) {
  const auto conn = Connectivity<2>::brick({2, 1});
  Forest<2> f(conn, 1, 1);
  // Deep refinement at the right edge of tree 0 (touching tree 1).
  f.refine(
      [](const TreeOct<2>& to) {
        return to.tree == 0 && to.oct.level < 4 &&
               to.oct.x[0] + side_len(to.oct) == root_len<2>;
      },
      true);
  const auto leaves = f.gather();
  // Tree 1 is a single root-level... actually level-1 leaves; the deep
  // refinement in tree 0 must violate cross-tree balance.
  EXPECT_FALSE(forest_is_balanced(leaves, conn, 1));
  const auto balanced = forest_balance_serial(leaves, conn, 1);
  EXPECT_TRUE(forest_is_balanced(balanced, conn, 1));
  EXPECT_GT(balanced.size(), leaves.size());
}

}  // namespace
}  // namespace octbal

namespace octbal {
namespace {

TEST(OracleCrossValidation, ForestSerialEqualsRippleOnSingleTree) {
  // Two independent reference implementations must agree: the forest-level
  // serial fixpoint (per-tree subtree balance iterated) and the pure
  // definition-level ripple, on a single-tree forest.
  Rng rng(2718);
  const auto conn = Connectivity<2>::unitcube();
  for (int iter = 0; iter < 10; ++iter) {
    Forest<2> f(conn, 1, 1);
    f.refine(
        [&](const TreeOct<2>& to) {
          return to.oct.level < 5 && rng.chance(0.35);
        },
        true);
    const auto leaves = f.gather();
    std::vector<Oct2> plain;
    for (const auto& to : leaves) plain.push_back(to.oct);
    for (int k = 1; k <= 2; ++k) {
      const auto via_forest = forest_balance_serial(leaves, conn, k);
      const auto via_ripple = ripple_balance(plain, k, root_octant<2>());
      ASSERT_EQ(via_forest.size(), via_ripple.size()) << "k=" << k;
      for (std::size_t i = 0; i < via_ripple.size(); ++i) {
        EXPECT_EQ(via_forest[i].oct, via_ripple[i]);
      }
    }
  }
}

}  // namespace
}  // namespace octbal
