/// \file test_audit_large.cpp
/// \brief Large-scale tier of the invariant audit: ~10^5-octant cases on
/// 64-192 simulated ranks, checked with the oracle-free battery (structure,
/// balance, scramble/partition invariance, thread determinism — see
/// Tier::kLarge in src/audit/case.hpp).  These cases are far beyond what
/// the serial fixed-point oracle can afford, which is exactly why they
/// exist: the 3D fractal-corner defect of the Table II λ profile (fixed in
/// core/lambda.hpp, see chain_reaches) only materializes at level
/// differences >= 3 and slipped through every full-tier sweep.  Labeled
/// `fuzz_large` in CMake; CI runs the label as its own step.

#include <gtest/gtest.h>

#include "audit/fuzzer.hpp"

namespace octbal::audit {
namespace {

TEST(AuditLarge, OracleFreeBatteryPassesSeedSweep) {
  FuzzOptions opt;
  opt.tier = Tier::kLarge;
  opt.seeds = 4;
  opt.seed0 = 20;  // covers 3D k=1/k=2 bricks, a Möbius ring, a 1.8e5-leaf 2D brick
  const FuzzSummary sum = Fuzzer(opt).run();
  ASSERT_TRUE(sum.ok()) << (sum.failures.empty()
                                ? std::string("counted failures without reports")
                                : sum.failures.front().repro);
  EXPECT_EQ(sum.cases_run, 4);
}

TEST(AuditLarge, LambdaFractalCornerRegressionSeeds) {
  // Seeds 8 and 15 are deep periodic 3D bricks with k=1 and k=2: the exact
  // workloads where the Carry3-based λ profile was one size exponent too
  // fine on the Sierpinski-like corner regions, producing forests the
  // balance invariant rejects.  They must stay green against the exact
  // chain-covering decision.
  FuzzOptions opt;
  opt.tier = Tier::kLarge;
  const Fuzzer fz(opt);
  for (std::uint64_t seed : {8ull, 15ull}) {
    const CaseConfig cfg = random_case_config(seed, Tier::kLarge);
    FuzzFailure f;
    EXPECT_TRUE(fz.run_case(cfg, &f))
        << "seed " << seed << " regressed: " << f.invariant << " -- "
        << f.detail;
  }
}

TEST(AuditLarge, CasesAreGenuinelyLarge) {
  // The tier only earns its name if the generator actually scales: every
  // large-tier case simulates at least 64 ranks, and the sweep range above
  // contains a >= 10^5-leaf input.  (Pre-balance counts; balancing only
  // grows them.)
  std::size_t max_leaves = 0;
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    const CaseConfig cfg = random_case_config(seed, Tier::kLarge);
    EXPECT_GE(cfg.ranks, 64) << "seed " << seed;
    const std::size_t n = cfg.dim == 2 ? make_case<2>(cfg).leaves.size()
                                       : make_case<3>(cfg).leaves.size();
    EXPECT_GE(n, 5000u) << "seed " << seed;
    max_leaves = std::max(max_leaves, n);
  }
  EXPECT_GE(max_leaves, 100000u);
}

TEST(AuditLarge, TierScalesEverySeed) {
  // Shape draws (dimension, balance condition) precede the size override
  // and must match the full tier seed for seed; the size knobs must be
  // scaled up for *every* seed, not just the hand-picked ones above.  Both
  // tiers still cover both subtree algorithms and all notify variants —
  // checked as a distribution, since the override shifts the draw stream.
  int large_old = 0, large_new = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const CaseConfig full = random_case_config(seed, Tier::kFull);
    const CaseConfig large = random_case_config(seed, Tier::kLarge);
    EXPECT_EQ(full.dim, large.dim) << seed;
    EXPECT_EQ(full.k, large.k) << seed;
    EXPECT_GE(large.ranks, 64) << seed;
    EXPECT_GE(large.lmax, full.lmax) << seed;
    (large.opt.subtree == SubtreeAlgo::kOld ? large_old : large_new)++;
  }
  EXPECT_GT(large_old, 0);
  EXPECT_GT(large_new, 0);
}

}  // namespace
}  // namespace octbal::audit
