/// \file test_simcomm_threads.cpp
/// \brief Concurrency stress for SimComm: many threads post into one BSP
/// step at once.  Two contracts are pinned:
///   (1) engine contract — one thread per sender rank (what
///       par::parallel_for_ranks guarantees): recv_all ordering and stats
///       must match the single-threaded oracle *exactly*;
///   (2) safety contract — many threads hammering the *same* sender:
///       relative order within the sender is then unspecified, but every
///       message must arrive exactly once and stats totals must match.
/// Run under -fsanitize=thread (ctest -L tsan) these tests also prove the
/// staging path is data-race-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "comm/simcomm.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

/// The deterministic per-rank posting schedule both the oracle and the
/// hammered communicator replay: rank r posts n_r messages to seeded
/// pseudo-random destinations with recognizable payloads.
struct Post {
  int to;
  std::vector<std::uint8_t> payload;
};

std::vector<Post> schedule_for(int rank, int P, std::uint64_t seed) {
  Rng rng(seed * 1000003u + rank);
  std::vector<Post> posts(3 + rng.below(24));
  for (std::size_t i = 0; i < posts.size(); ++i) {
    posts[i].to = static_cast<int>(rng.below(P));
    posts[i].payload.resize(rng.below(64));  // zero-length is legal
    for (auto& b : posts[i].payload) b = static_cast<std::uint8_t>(rng.next());
  }
  return posts;
}

void replay(SimComm& comm, int rank, const std::vector<Post>& posts) {
  for (std::size_t i = 0; i < posts.size(); ++i) {
    if (i % 3 == 2) {
      // Exercise the typed path too.
      comm.send_items<std::uint8_t>(
          rank, posts[i].to, std::span<const std::uint8_t>(posts[i].payload));
    } else {
      comm.send(rank, posts[i].to, posts[i].payload);
    }
  }
}

std::vector<std::vector<SimMessage>> drain(SimComm& comm, int P) {
  std::vector<std::vector<SimMessage>> all(P);
  for (int r = 0; r < P; ++r) all[r] = comm.recv_all(r);
  return all;
}

TEST(SimCommThreads, ConcurrentRankBodiesMatchSerialOracle) {
  ThreadGuard guard;
  const int P = 23;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    // Oracle: post everything from one thread.
    par::set_num_threads(1);
    SimComm oracle(P);
    for (int r = 0; r < P; ++r) replay(oracle, r, schedule_for(r, P, seed));
    oracle.deliver();
    const auto want = drain(oracle, P);
    const auto want_stats = oracle.stats();
    const double want_time = oracle.modeled_time();

    // Same schedule, rank bodies spread over 8 threads.
    par::set_num_threads(8);
    SimComm comm(P);
    par::parallel_for_ranks(
        P, [&](int r) { replay(comm, r, schedule_for(r, P, seed)); });
    comm.deliver();
    const auto got = drain(comm, P);

    EXPECT_EQ(comm.stats().messages, want_stats.messages);
    EXPECT_EQ(comm.stats().bytes, want_stats.bytes);
    EXPECT_EQ(comm.modeled_time(), want_time);
    for (int r = 0; r < P; ++r) {
      ASSERT_EQ(got[r].size(), want[r].size()) << "rank " << r;
      for (std::size_t i = 0; i < got[r].size(); ++i) {
        EXPECT_EQ(got[r][i].from, want[r][i].from)
            << "rank " << r << " msg " << i << ": sender order differs";
        EXPECT_EQ(got[r][i].data, want[r][i].data)
            << "rank " << r << " msg " << i;
      }
    }
  }
}

TEST(SimCommThreads, ManyStepsInterleavedWithBarriers) {
  ThreadGuard guard;
  par::set_num_threads(8);
  const int P = 9;
  SimComm comm(P);
  SimComm oracle(P);
  for (int step = 0; step < 12; ++step) {
    const std::uint64_t seed = 50 + step;
    par::parallel_for_ranks(
        P, [&](int r) { replay(comm, r, schedule_for(r, P, seed)); });
    for (int r = 0; r < P; ++r) replay(oracle, r, schedule_for(r, P, seed));
    comm.deliver();
    oracle.deliver();
    std::vector<std::vector<SimMessage>> got(P), want(P);
    par::parallel_for_ranks(P, [&](int r) { got[r] = comm.recv_all(r); });
    for (int r = 0; r < P; ++r) want[r] = oracle.recv_all(r);
    for (int r = 0; r < P; ++r) {
      ASSERT_EQ(got[r].size(), want[r].size()) << "step " << step;
      for (std::size_t i = 0; i < got[r].size(); ++i) {
        EXPECT_EQ(got[r][i].from, want[r][i].from);
        EXPECT_EQ(got[r][i].data, want[r][i].data);
      }
    }
  }
  EXPECT_EQ(comm.stats().messages, oracle.stats().messages);
  EXPECT_EQ(comm.stats().bytes, oracle.stats().bytes);
  EXPECT_EQ(comm.modeled_time(), oracle.modeled_time());
}

TEST(SimCommThreads, SameSenderHammeredFromManyThreads) {
  // Safety (not ordering) under sender contention: 8 raw threads all post
  // from rank 0; every payload must arrive exactly once and totals must
  // match, whatever interleaving the scheduler picks.
  const int P = 4;
  const int kThreads = 8;
  const int kPerThread = 200;
  SimComm comm(P);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&comm, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::vector<std::uint8_t> payload(8);
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(t) << 32) | static_cast<unsigned>(i);
        std::memcpy(payload.data(), &tag, sizeof(tag));
        comm.send(0, (t + i) % P, std::move(payload));
      }
    });
  }
  for (auto& t : threads) t.join();
  comm.deliver();

  EXPECT_EQ(comm.stats().messages,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(comm.stats().bytes,
            static_cast<std::uint64_t>(kThreads) * kPerThread * 8);
  std::vector<std::uint64_t> seen;
  for (int r = 0; r < P; ++r) {
    for (const SimMessage& m : comm.recv_all(r)) {
      EXPECT_EQ(m.from, 0);
      ASSERT_EQ(m.data.size(), 8u);
      std::uint64_t tag = 0;
      std::memcpy(&tag, m.data.data(), 8);
      // Destination is a pure function of the tag: delivery must respect it.
      const int t = static_cast<int>(tag >> 32);
      const int i = static_cast<int>(tag & 0xffffffffu);
      EXPECT_EQ((t + i) % P, r);
      seen.push_back(tag);
    }
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
      << "a payload was duplicated or lost";
}

TEST(SimCommThreads, SingleRankCollectivesAreFree) {
  // A collective over one rank is a no-op on real MPI; the cost model used
  // to charge p * ceil(log2 p) >= 1 messages for it.  Every collective at
  // p = 1 must model zero messages, zero bytes, and zero time.
  SimComm comm(1);
  const std::vector<int> g = comm.allgather(std::vector<int>{7, 8, 9});
  EXPECT_EQ(g, (std::vector<int>{7, 8, 9}));
  std::vector<std::size_t> offsets;
  const std::vector<double> v = comm.allgatherv(
      std::vector<std::vector<double>>{{1.0, 2.0}}, &offsets);
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(comm.stats().messages, 0u);
  EXPECT_EQ(comm.stats().bytes, 0u);
  EXPECT_EQ(comm.modeled_time(), 0.0);
  const auto snap = comm.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("comm/collectives").at(0), 2u);
  EXPECT_EQ(snap.counters.at("comm/collective_msgs").at(0), 0u);
  EXPECT_EQ(snap.counters.at("comm/collective_bytes").at(0), 0u);

  // Multi-rank collectives still charge the tree-structured cost.
  SimComm comm3(3);
  (void)comm3.allgather(std::vector<int>{1});
  EXPECT_EQ(comm3.stats().messages, 3u * 2u);  // p * ceil(log2 p)
  EXPECT_GT(comm3.modeled_time(), 0.0);
}

TEST(SimCommThreads, ConcurrentSendersPreservePostOrderWithinSender) {
  // Each sender posts an increasing sequence to one receiver from its own
  // thread; the receiver must see (sender ascending, post order within).
  ThreadGuard guard;
  par::set_num_threads(8);
  const int P = 16;
  SimComm comm(P);
  par::parallel_for_ranks(P, [&](int r) {
    for (int i = 0; i < 50; ++i) {
      std::vector<std::uint8_t> b{static_cast<std::uint8_t>(i)};
      comm.send(r, 0, std::move(b));
    }
  });
  comm.deliver();
  const auto msgs = comm.recv_all(0);
  ASSERT_EQ(msgs.size(), static_cast<std::size_t>(P) * 50);
  for (int s = 0; s < P; ++s) {
    for (int i = 0; i < 50; ++i) {
      const SimMessage& m = msgs[s * 50 + i];
      EXPECT_EQ(m.from, s);
      EXPECT_EQ(m.data[0], static_cast<std::uint8_t>(i));
    }
  }
}

}  // namespace
}  // namespace octbal
