/// \file test_balance_differential.cpp
/// \brief Differential testing of the paper's configurations: for seeded
/// random refinement patterns, the new algorithm (seeds + grouped
/// rebalance + Notify) must produce the *same* balanced forest, octant for
/// octant, as the old algorithm (raw octants + whole-partition rebalance +
/// Ranges), and both must pass the brute-force balance check — at several
/// rank counts, and under the threaded execution engine.

#include <gtest/gtest.h>

#include "core/balance_check.hpp"
#include "forest/balance.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

template <int D>
void random_refine(Forest<D>& f, Rng& rng, int max_lvl, double p_split) {
  f.refine(
      [&](const TreeOct<D>& to) {
        return to.oct.level < max_lvl && rng.chance(p_split);
      },
      true);
}

template <int D>
std::vector<TreeOct<D>> balance_fresh(const Connectivity<D>& conn, int ranks,
                                      std::uint64_t seed, int max_lvl,
                                      double p_split,
                                      const BalanceOptions& opt) {
  Rng rng(seed);
  Forest<D> f(conn, ranks, 1);
  random_refine(f, rng, max_lvl, p_split);
  f.partition_uniform();
  SimComm comm(ranks);
  balance(f, opt, comm);
  EXPECT_TRUE(f.is_valid());
  return f.gather();
}

class BalanceDifferential2D : public ::testing::TestWithParam<int> {};

TEST_P(BalanceDifferential2D, OldAndNewAgreeOnRandomMeshes) {
  ThreadGuard guard;
  par::set_num_threads(8);  // exercise the concurrent paths
  const int ranks = GetParam();
  const auto conn = Connectivity<2>::brick({2, 2});
  for (std::uint64_t seed : {7u, 77u, 777u}) {
    for (int k = 1; k <= 2; ++k) {
      BalanceOptions o_new = BalanceOptions::new_config();
      BalanceOptions o_old = BalanceOptions::old_config();
      o_new.k = o_old.k = k;
      const auto got_new =
          balance_fresh<2>(conn, ranks, seed, 6, 0.33, o_new);
      const auto got_old =
          balance_fresh<2>(conn, ranks, seed, 6, 0.33, o_old);
      const std::string label = "p=" + std::to_string(ranks) +
                                " seed=" + std::to_string(seed) +
                                " k=" + std::to_string(k);
      EXPECT_EQ(got_new, got_old) << label << ": new != old";
      EXPECT_TRUE(forest_is_balanced(got_new, conn, k)) << label;
      EXPECT_TRUE(forest_is_balanced(got_old, conn, k)) << label;
      // Per-tree brute-force oracle on top of the forest-level check.
      std::vector<Octant<2>> tree0;
      for (const auto& to : got_new) {
        if (to.tree == 0) tree0.push_back(to.oct);
      }
      EXPECT_TRUE(is_balanced(tree0, k, root_octant<2>())) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, BalanceDifferential2D,
                         ::testing::Values(1, 3, 5, 9));

class BalanceDifferential3D : public ::testing::TestWithParam<int> {};

TEST_P(BalanceDifferential3D, OldAndNewAgreeOnRandomMeshes) {
  ThreadGuard guard;
  par::set_num_threads(8);
  const int ranks = GetParam();
  const auto conn = Connectivity<3>::brick({2, 1, 1});
  for (std::uint64_t seed : {13u, 131u}) {
    for (int k : {1, 3}) {
      BalanceOptions o_new = BalanceOptions::new_config();
      BalanceOptions o_old = BalanceOptions::old_config();
      o_new.k = o_old.k = k;
      const auto got_new = balance_fresh<3>(conn, ranks, seed, 4, 0.3, o_new);
      const auto got_old = balance_fresh<3>(conn, ranks, seed, 4, 0.3, o_old);
      const std::string label = "p=" + std::to_string(ranks) +
                                " seed=" + std::to_string(seed) +
                                " k=" + std::to_string(k);
      EXPECT_EQ(got_new, got_old) << label << ": new != old";
      EXPECT_TRUE(forest_is_balanced(got_new, conn, k)) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, BalanceDifferential3D, ::testing::Values(2, 6));

TEST(BalanceDifferential, PeriodicWrapAgreesAcrossConfigs) {
  // Periodic gluings route octants through non-identity frames — the
  // subtlest code path in query/response; run it differentially too.
  ThreadGuard guard;
  par::set_num_threads(8);
  std::array<bool, 2> per{true, true};
  const auto conn = Connectivity<2>::brick({2, 1}, per);
  for (int ranks : {1, 4}) {
    const auto got_new = balance_fresh<2>(conn, ranks, 99, 5, 0.4,
                                          BalanceOptions::new_config());
    const auto got_old = balance_fresh<2>(conn, ranks, 99, 5, 0.4,
                                          BalanceOptions::old_config());
    EXPECT_EQ(got_new, got_old) << "periodic p=" << ranks;
    EXPECT_TRUE(forest_is_balanced(got_new, conn, 2));
  }
}

}  // namespace
}  // namespace octbal
