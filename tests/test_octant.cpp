/// \file test_octant.cpp
/// \brief Unit and property tests for the octant type and the Table I
/// relationships: parent/child/sibling/family/child-id, Morton ordering,
/// containment, descendants, and the nearest common ancestor.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/octant.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <typename T>
class OctantTypedTest : public ::testing::Test {};

template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(OctantTypedTest, Dims);

TYPED_TEST(OctantTypedTest, RootIsValid) {
  constexpr int D = TypeParam::d;
  const auto r = root_octant<D>();
  EXPECT_TRUE(is_valid(r));
  EXPECT_EQ(side_len(r), root_len<D>);
  EXPECT_EQ(size_exp(r), max_level<D>);
}

TYPED_TEST(OctantTypedTest, ChildParentRoundTrip) {
  constexpr int D = TypeParam::d;
  Rng rng(7);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 500; ++iter) {
    const auto o = random_octant(rng, root, max_level<D> - 1);
    for (int i = 0; i < num_children<D>; ++i) {
      const auto c = child(o, i);
      EXPECT_TRUE(is_valid(c));
      EXPECT_EQ(parent(c), o);
      EXPECT_EQ(child_id(c), i);
      EXPECT_TRUE(is_ancestor(o, c));
      EXPECT_TRUE(contains(o, c));
      EXPECT_FALSE(contains(c, o));
    }
  }
}

TYPED_TEST(OctantTypedTest, SiblingIsChildOfParent) {
  constexpr int D = TypeParam::d;
  Rng rng(8);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 200; ++iter) {
    auto o = random_octant(rng, root, max_level<D>);
    if (o.level == 0) continue;
    for (int i = 0; i < num_children<D>; ++i) {
      EXPECT_EQ(sibling(o, i), child(parent(o), i));
    }
    EXPECT_EQ(sibling(o, child_id(o)), o);
    EXPECT_EQ(zero_sibling(o), sibling(o, 0));
  }
}

TYPED_TEST(OctantTypedTest, FamilyCoversParentExactly) {
  constexpr int D = TypeParam::d;
  Rng rng(9);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 100; ++iter) {
    auto o = random_octant(rng, root, max_level<D>);
    if (o.level == 0) continue;
    const auto fam = family(o);
    morton_t vol = 0;
    for (const auto& f : fam) {
      EXPECT_EQ(parent(f), parent(o));
      vol += morton_t{1} << (D * size_exp(f));
    }
    EXPECT_EQ(vol, morton_t{1} << (D * size_exp(parent(o))));
  }
}

TYPED_TEST(OctantTypedTest, MortonOrderMatchesChildOrder) {
  constexpr int D = TypeParam::d;
  Rng rng(10);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 200; ++iter) {
    const auto o = random_octant(rng, root, max_level<D> - 1);
    // Children are ordered by child index (the z-pattern of Figure 2).
    for (int i = 0; i + 1 < num_children<D>; ++i) {
      EXPECT_LT(child(o, i), child(o, i + 1));
    }
    // An ancestor precedes all of its descendants (preorder).
    EXPECT_LT(o, child(o, 0));
  }
}

TYPED_TEST(OctantTypedTest, OrderIsTotalOnRandomOctants) {
  constexpr int D = TypeParam::d;
  Rng rng(11);
  const auto root = root_octant<D>();
  std::vector<Octant<D>> v;
  for (int i = 0; i < 300; ++i) v.push_back(random_octant(rng, root, 8));
  std::sort(v.begin(), v.end());
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_TRUE(v[i] < v[i + 1] || v[i] == v[i + 1]);
    // Trichotomy: exactly one of <, ==, > holds.
    const bool lt = v[i] < v[i + 1], eq = v[i] == v[i + 1],
               gt = v[i + 1] < v[i];
    EXPECT_EQ(1, int(lt) + int(eq) + int(gt));
  }
}

TYPED_TEST(OctantTypedTest, DisjointOctantsOrderedByAnchorKey) {
  constexpr int D = TypeParam::d;
  Rng rng(12);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 500; ++iter) {
    const auto a = random_octant(rng, root, 10);
    const auto b = random_octant(rng, root, 10);
    if (overlaps(a, b)) continue;
    EXPECT_EQ(a < b, morton_key(a) < morton_key(b));
  }
}

TYPED_TEST(OctantTypedTest, FirstLastDescendants) {
  constexpr int D = TypeParam::d;
  Rng rng(13);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 200; ++iter) {
    const auto o = random_octant(rng, root, max_level<D> - 2);
    const int lvl = o.level + 2;
    const auto fd = first_descendant(o, lvl);
    const auto ld = last_descendant(o, lvl);
    EXPECT_TRUE(contains(o, fd));
    EXPECT_TRUE(contains(o, ld));
    EXPECT_LE(fd, ld);
    // No descendant at that level lies outside [fd, ld].
    const auto c = child(child(o, num_children<D> - 1), 0);
    EXPECT_LE(fd, c);
    EXPECT_LE(c, ld);
  }
}

TYPED_TEST(OctantTypedTest, NearestCommonAncestorProperties) {
  constexpr int D = TypeParam::d;
  Rng rng(14);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 500; ++iter) {
    const auto a = random_octant(rng, root, 10);
    const auto b = random_octant(rng, root, 10);
    const auto n = nearest_common_ancestor(a, b);
    EXPECT_TRUE(contains(n, a));
    EXPECT_TRUE(contains(n, b));
    // Nearest: no child of n contains both.
    if (n.level < max_level<D>) {
      for (int i = 0; i < num_children<D>; ++i) {
        const auto c = child(n, i);
        EXPECT_FALSE(contains(c, a) && contains(c, b));
      }
    }
  }
}

TYPED_TEST(OctantTypedTest, AncestorChainIsConsistent) {
  constexpr int D = TypeParam::d;
  Rng rng(15);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 100; ++iter) {
    auto o = random_octant(rng, root, 12);
    auto walk = o;
    while (walk.level > 0) {
      walk = parent(walk);
      EXPECT_EQ(walk, ancestor(o, walk.level));
      EXPECT_TRUE(is_ancestor(walk, o));
    }
    EXPECT_EQ(walk, root);
  }
}

TYPED_TEST(OctantTypedTest, PreclusionIsPartialOrderOnFamilies) {
  constexpr int D = TypeParam::d;
  Rng rng(16);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 300; ++iter) {
    auto a = random_octant(rng, root, 10);
    auto b = random_octant(rng, root, 10);
    if (a.level == 0 || b.level == 0) continue;
    // Reflexivity on families: siblings are preclusion-equivalent.
    EXPECT_TRUE(precludes_le(a, a));
    EXPECT_TRUE(precludes_le(a, zero_sibling(a)));
    // Antisymmetry up to family equivalence.
    if (precludes_lt(a, b)) {
      EXPECT_FALSE(precludes_lt(b, a));
      EXPECT_TRUE(is_ancestor(parent(a), parent(b)));
    }
  }
}

TEST(Octant2D, ExplicitMortonOrder) {
  // The level-1 children of the 2D root in z-order: (0,0),(1,0),(0,1),(1,1).
  const auto r = root_octant<2>();
  const coord_t h = root_len<2> / 2;
  const Oct2 c0{{0, 0}, 1}, c1{{h, 0}, 1}, c2{{0, h}, 1}, c3{{h, h}, 1};
  EXPECT_LT(c0, c1);
  EXPECT_LT(c1, c2);
  EXPECT_LT(c2, c3);
  EXPECT_EQ(child(r, 1), c1);
  EXPECT_EQ(child(r, 2), c2);
}

TEST(Octant3D, ChildIdBitsMapToAxes) {
  const auto r = root_octant<3>();
  const coord_t h = root_len<3> / 2;
  EXPECT_EQ(child(r, 5).x, (std::array<coord_t, 3>{h, 0, h}));
  EXPECT_EQ(child_id(child(r, 5)), 5);
}

TEST(Octant1D, DegenerateDimensionWorks) {
  const auto r = root_octant<1>();
  const auto c0 = child(r, 0), c1 = child(r, 1);
  EXPECT_LT(c0, c1);
  EXPECT_EQ(parent(c1), r);
  // Keys are biased for exterior headroom; differences are unbiased.
  EXPECT_EQ(morton_key(c1) - morton_key(c0),
            static_cast<morton_t>(root_len<1> / 2));
}

}  // namespace
}  // namespace octbal
