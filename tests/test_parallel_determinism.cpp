/// \file test_parallel_determinism.cpp
/// \brief The threaded rank-execution engine must be invisible in every
/// *result*: for any thread count, the balanced forest (octant-for-octant),
/// the exact message counts, and the exact byte volumes are identical to
/// the single-threaded run.  Determinism holds because ordering decisions
/// are made only at SimComm barriers — delivery order is (sender, post
/// order) and each rank body runs on one thread — so thread scheduling can
/// change wall-clock only, never what any rank observes.

#include <gtest/gtest.h>

#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "util/parallel.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

/// Restore the ambient thread count when a test exits, even on failure.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

struct RunOutcome {
  std::vector<TreeOct<3>> octants;
  std::uint64_t checksum = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t queries = 0;
  std::uint64_t responses = 0;
};

RunOutcome run_once(int ranks, const BalanceOptions& opt, int threads) {
  par::set_num_threads(threads);
  Forest<3> f(Connectivity<3>::brick({3, 2, 1}), ranks, 2);
  fractal_refine(f, 5);
  f.partition_uniform();
  SimComm comm(ranks);
  const BalanceReport rep = balance(f, opt, comm);
  RunOutcome out;
  out.octants = f.gather();
  out.checksum = forest_checksum(f);
  out.messages = comm.stats().messages;
  out.bytes = comm.stats().bytes;
  out.queries = rep.queries_sent;
  out.responses = rep.response_items;
  return out;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ParallelDeterminism, IdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const int ranks = std::get<0>(GetParam());
  const bool use_new = std::get<1>(GetParam());
  const BalanceOptions opt =
      use_new ? BalanceOptions::new_config() : BalanceOptions::old_config();

  const RunOutcome ref = run_once(ranks, opt, 1);
  EXPECT_TRUE(forest_is_balanced(ref.octants, Connectivity<3>::brick({3, 2, 1}),
                                 3));
  for (int threads : {2, 8}) {
    const RunOutcome got = run_once(ranks, opt, threads);
    const std::string label = "ranks=" + std::to_string(ranks) +
                              " threads=" + std::to_string(threads) +
                              (use_new ? " new" : " old");
    EXPECT_EQ(got.octants, ref.octants) << label << ": octants differ";
    EXPECT_EQ(got.checksum, ref.checksum) << label;
    EXPECT_EQ(got.messages, ref.messages) << label << ": message count differs";
    EXPECT_EQ(got.bytes, ref.bytes) << label << ": byte volume differs";
    EXPECT_EQ(got.queries, ref.queries) << label;
    EXPECT_EQ(got.responses, ref.responses) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksByConfig, ParallelDeterminism,
    ::testing::Combine(::testing::Values(1, 5, 32), ::testing::Bool()),
    [](const auto& info) {
      return "P" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_new" : "_old");
    });

TEST(ParallelDeterminism, FusedNotifyAndGhostLayer) {
  // The payload-carrying Notify path and the ghost layer also run rank
  // bodies concurrently; pin them too.
  ThreadGuard guard;
  BalanceOptions fused = BalanceOptions::new_config();
  fused.notify_carries_queries = true;

  auto run = [&](int threads) {
    par::set_num_threads(threads);
    Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 7, 2);
    fractal_refine(f, 5);
    f.partition_uniform();
    SimComm comm(7);
    balance(f, fused, comm);
    const GhostLayer<3> g = build_ghost_layer(f, 3, comm, NotifyAlgo::kNotify);
    std::uint64_t ghost_total = 0;
    for (const auto& pr : g.per_rank) ghost_total += pr.size();
    return std::tuple{forest_checksum(f), comm.stats().messages,
                      comm.stats().bytes, ghost_total, g.per_rank};
  };
  const auto ref = run(1);
  for (int threads : {2, 8}) {
    EXPECT_EQ(run(threads), ref) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, ThreadCountControls) {
  ThreadGuard guard;
  par::set_num_threads(3);
  EXPECT_EQ(par::num_threads(), 3);
  par::set_num_threads(1);
  EXPECT_EQ(par::num_threads(), 1);
  // 0 re-resolves the default (env override or hardware concurrency).
  par::set_num_threads(0);
  EXPECT_GE(par::num_threads(), 1);
}

TEST(ParallelDeterminism, ExceptionPropagatesFromRankBody) {
  ThreadGuard guard;
  par::set_num_threads(4);
  EXPECT_THROW(
      par::parallel_for_ranks(16,
                              [](int r) {
                                if (r == 11) throw std::runtime_error("rank 11");
                              }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::vector<int> hit(16, 0);
  par::parallel_for_ranks(16, [&](int r) { hit[r] = 1; });
  for (int r = 0; r < 16; ++r) EXPECT_EQ(hit[r], 1) << r;
}

}  // namespace
}  // namespace octbal
